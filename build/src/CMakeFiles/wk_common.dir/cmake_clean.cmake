file(REMOVE_RECURSE
  "CMakeFiles/wk_common.dir/common/buffer.cpp.o"
  "CMakeFiles/wk_common.dir/common/buffer.cpp.o.d"
  "CMakeFiles/wk_common.dir/common/logging.cpp.o"
  "CMakeFiles/wk_common.dir/common/logging.cpp.o.d"
  "CMakeFiles/wk_common.dir/common/random.cpp.o"
  "CMakeFiles/wk_common.dir/common/random.cpp.o.d"
  "CMakeFiles/wk_common.dir/common/stats.cpp.o"
  "CMakeFiles/wk_common.dir/common/stats.cpp.o.d"
  "libwk_common.a"
  "libwk_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libwk_common.a"
)

# Empty compiler generated dependencies file for wk_common.
# This may be replaced when dependencies are built.

# Empty dependencies file for wk_bookkeeper.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wk_bookkeeper.dir/bookkeeper/bookie.cpp.o"
  "CMakeFiles/wk_bookkeeper.dir/bookkeeper/bookie.cpp.o.d"
  "CMakeFiles/wk_bookkeeper.dir/bookkeeper/ledger.cpp.o"
  "CMakeFiles/wk_bookkeeper.dir/bookkeeper/ledger.cpp.o.d"
  "CMakeFiles/wk_bookkeeper.dir/bookkeeper/writer.cpp.o"
  "CMakeFiles/wk_bookkeeper.dir/bookkeeper/writer.cpp.o.d"
  "libwk_bookkeeper.a"
  "libwk_bookkeeper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_bookkeeper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libwk_bookkeeper.a"
)

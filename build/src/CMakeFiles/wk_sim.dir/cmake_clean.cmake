file(REMOVE_RECURSE
  "CMakeFiles/wk_sim.dir/sim/failure.cpp.o"
  "CMakeFiles/wk_sim.dir/sim/failure.cpp.o.d"
  "CMakeFiles/wk_sim.dir/sim/network.cpp.o"
  "CMakeFiles/wk_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/wk_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/wk_sim.dir/sim/simulator.cpp.o.d"
  "libwk_sim.a"
  "libwk_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

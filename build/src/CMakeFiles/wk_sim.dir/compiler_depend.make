# Empty compiler generated dependencies file for wk_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libwk_sim.a"
)

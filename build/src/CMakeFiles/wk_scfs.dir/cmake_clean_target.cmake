file(REMOVE_RECURSE
  "libwk_scfs.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/wk_scfs.dir/scfs/metadata.cpp.o"
  "CMakeFiles/wk_scfs.dir/scfs/metadata.cpp.o.d"
  "CMakeFiles/wk_scfs.dir/scfs/workload.cpp.o"
  "CMakeFiles/wk_scfs.dir/scfs/workload.cpp.o.d"
  "libwk_scfs.a"
  "libwk_scfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_scfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for wk_scfs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libwk_zab.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/wk_zab.dir/zab/log.cpp.o"
  "CMakeFiles/wk_zab.dir/zab/log.cpp.o.d"
  "CMakeFiles/wk_zab.dir/zab/peer.cpp.o"
  "CMakeFiles/wk_zab.dir/zab/peer.cpp.o.d"
  "libwk_zab.a"
  "libwk_zab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_zab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for wk_zab.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for wk_tests.
# This may be replaced when dependencies are built.

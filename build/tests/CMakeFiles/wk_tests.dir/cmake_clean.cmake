file(REMOVE_RECURSE
  "CMakeFiles/wk_tests.dir/test_common.cpp.o"
  "CMakeFiles/wk_tests.dir/test_common.cpp.o.d"
  "CMakeFiles/wk_tests.dir/test_consistency.cpp.o"
  "CMakeFiles/wk_tests.dir/test_consistency.cpp.o.d"
  "CMakeFiles/wk_tests.dir/test_failures.cpp.o"
  "CMakeFiles/wk_tests.dir/test_failures.cpp.o.d"
  "CMakeFiles/wk_tests.dir/test_harnesses.cpp.o"
  "CMakeFiles/wk_tests.dir/test_harnesses.cpp.o.d"
  "CMakeFiles/wk_tests.dir/test_sim.cpp.o"
  "CMakeFiles/wk_tests.dir/test_sim.cpp.o.d"
  "CMakeFiles/wk_tests.dir/test_store.cpp.o"
  "CMakeFiles/wk_tests.dir/test_store.cpp.o.d"
  "CMakeFiles/wk_tests.dir/test_tokens.cpp.o"
  "CMakeFiles/wk_tests.dir/test_tokens.cpp.o.d"
  "CMakeFiles/wk_tests.dir/test_transport.cpp.o"
  "CMakeFiles/wk_tests.dir/test_transport.cpp.o.d"
  "CMakeFiles/wk_tests.dir/test_wankeeper_integration.cpp.o"
  "CMakeFiles/wk_tests.dir/test_wankeeper_integration.cpp.o.d"
  "CMakeFiles/wk_tests.dir/test_zab.cpp.o"
  "CMakeFiles/wk_tests.dir/test_zab.cpp.o.d"
  "CMakeFiles/wk_tests.dir/test_zk_integration.cpp.o"
  "CMakeFiles/wk_tests.dir/test_zk_integration.cpp.o.d"
  "wk_tests"
  "wk_tests.pdb"
  "wk_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/wk_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/wk_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_consistency.cpp" "tests/CMakeFiles/wk_tests.dir/test_consistency.cpp.o" "gcc" "tests/CMakeFiles/wk_tests.dir/test_consistency.cpp.o.d"
  "/root/repo/tests/test_failures.cpp" "tests/CMakeFiles/wk_tests.dir/test_failures.cpp.o" "gcc" "tests/CMakeFiles/wk_tests.dir/test_failures.cpp.o.d"
  "/root/repo/tests/test_harnesses.cpp" "tests/CMakeFiles/wk_tests.dir/test_harnesses.cpp.o" "gcc" "tests/CMakeFiles/wk_tests.dir/test_harnesses.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/wk_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/wk_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_store.cpp" "tests/CMakeFiles/wk_tests.dir/test_store.cpp.o" "gcc" "tests/CMakeFiles/wk_tests.dir/test_store.cpp.o.d"
  "/root/repo/tests/test_tokens.cpp" "tests/CMakeFiles/wk_tests.dir/test_tokens.cpp.o" "gcc" "tests/CMakeFiles/wk_tests.dir/test_tokens.cpp.o.d"
  "/root/repo/tests/test_transport.cpp" "tests/CMakeFiles/wk_tests.dir/test_transport.cpp.o" "gcc" "tests/CMakeFiles/wk_tests.dir/test_transport.cpp.o.d"
  "/root/repo/tests/test_wankeeper_integration.cpp" "tests/CMakeFiles/wk_tests.dir/test_wankeeper_integration.cpp.o" "gcc" "tests/CMakeFiles/wk_tests.dir/test_wankeeper_integration.cpp.o.d"
  "/root/repo/tests/test_zab.cpp" "tests/CMakeFiles/wk_tests.dir/test_zab.cpp.o" "gcc" "tests/CMakeFiles/wk_tests.dir/test_zab.cpp.o.d"
  "/root/repo/tests/test_zk_integration.cpp" "tests/CMakeFiles/wk_tests.dir/test_zk_integration.cpp.o" "gcc" "tests/CMakeFiles/wk_tests.dir/test_zk_integration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wk_scfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_bookkeeper.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_zk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_zab.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

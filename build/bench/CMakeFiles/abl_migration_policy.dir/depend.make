# Empty dependencies file for abl_migration_policy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_migration_policy.dir/abl_migration_policy.cpp.o"
  "CMakeFiles/abl_migration_policy.dir/abl_migration_policy.cpp.o.d"
  "abl_migration_policy"
  "abl_migration_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_migration_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig4_ycsb_ratio.
# This may be replaced when dependencies are built.

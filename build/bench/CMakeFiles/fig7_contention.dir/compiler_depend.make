# Empty compiler generated dependencies file for fig7_contention.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7_contention.dir/fig7_contention.cpp.o"
  "CMakeFiles/fig7_contention.dir/fig7_contention.cpp.o.d"
  "fig7_contention"
  "fig7_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

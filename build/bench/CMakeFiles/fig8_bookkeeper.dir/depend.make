# Empty dependencies file for fig8_bookkeeper.
# This may be replaced when dependencies are built.

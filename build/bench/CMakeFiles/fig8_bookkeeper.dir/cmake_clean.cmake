file(REMOVE_RECURSE
  "CMakeFiles/fig8_bookkeeper.dir/fig8_bookkeeper.cpp.o"
  "CMakeFiles/fig8_bookkeeper.dir/fig8_bookkeeper.cpp.o.d"
  "fig8_bookkeeper"
  "fig8_bookkeeper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bookkeeper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

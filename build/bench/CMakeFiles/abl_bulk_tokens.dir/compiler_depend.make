# Empty compiler generated dependencies file for abl_bulk_tokens.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_bulk_tokens.dir/abl_bulk_tokens.cpp.o"
  "CMakeFiles/abl_bulk_tokens.dir/abl_bulk_tokens.cpp.o.d"
  "abl_bulk_tokens"
  "abl_bulk_tokens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bulk_tokens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

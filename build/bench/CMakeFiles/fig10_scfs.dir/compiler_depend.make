# Empty compiler generated dependencies file for fig10_scfs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig10_scfs.dir/fig10_scfs.cpp.o"
  "CMakeFiles/fig10_scfs.dir/fig10_scfs.cpp.o.d"
  "fig10_scfs"
  "fig10_scfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_scfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

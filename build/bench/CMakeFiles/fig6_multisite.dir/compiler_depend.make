# Empty compiler generated dependencies file for fig6_multisite.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig6_multisite.dir/fig6_multisite.cpp.o"
  "CMakeFiles/fig6_multisite.dir/fig6_multisite.cpp.o.d"
  "fig6_multisite"
  "fig6_multisite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_multisite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

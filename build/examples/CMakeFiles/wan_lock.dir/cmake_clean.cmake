file(REMOVE_RECURSE
  "CMakeFiles/wan_lock.dir/wan_lock.cpp.o"
  "CMakeFiles/wan_lock.dir/wan_lock.cpp.o.d"
  "wan_lock"
  "wan_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

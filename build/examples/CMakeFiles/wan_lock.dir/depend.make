# Empty dependencies file for wan_lock.
# This may be replaced when dependencies are built.

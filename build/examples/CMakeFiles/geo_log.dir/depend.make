# Empty dependencies file for geo_log.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/geo_log.dir/geo_log.cpp.o"
  "CMakeFiles/geo_log.dir/geo_log.cpp.o.d"
  "geo_log"
  "geo_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for scfs_metadata.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/scfs_metadata.cpp" "examples/CMakeFiles/scfs_metadata.dir/scfs_metadata.cpp.o" "gcc" "examples/CMakeFiles/scfs_metadata.dir/scfs_metadata.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_scfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_zk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_zab.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
